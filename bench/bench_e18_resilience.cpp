// E18 — resilience under injected faults (paper §IV: the runtime must
// "react to changing workload conditions"; on disaggregated cloudFPGA
// infrastructure crashes, link trouble, and failed reconfigurations are
// normal events).
//
// Series 1: goodput/makespan vs transient fault rate — naive same-worker
//           retry vs reroute-to-healthy retry in the workflow simulator.
// Series 2: crash recovery-time distribution (phi-accrual detection +
//           lineage recomputation) across random seed-reproducible plans.
// Series 3: speculative re-execution vs stragglers.
// Series 4: serving goodput under FPGA faults, breaker off vs on — the
//           degraded-mode curve (FPGA → CPU fallback instead of failing).
//
// `--smoke` shrinks every series for CI.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "smoke.hpp"
#include "common/table.hpp"
#include "resilience/fault_plan.hpp"
#include "serve/server.hpp"
#include "workflow/scheduler.hpp"
#include "workflow/task_graph.hpp"

using namespace everest;
using namespace everest::workflow;

namespace {

std::vector<WorkerSpec> pool(std::size_t n, double gflops = 10.0) {
  std::vector<WorkerSpec> workers;
  for (std::size_t i = 0; i < n; ++i) {
    workers.push_back({"w" + std::to_string(i), gflops, 1.0, 10.0});
  }
  return workers;
}

double pct(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);
  std::printf("=== E18: fault injection, detection, and degradation ===\n\n");

  // --- Series 1: transient faults — retry strategy ------------------------
  Rng graph_rng(5);
  TaskGraph graph =
      TaskGraph::random_layered(smoke ? 4 : 8, smoke ? 8 : 24, 3, graph_rng,
                                2e8, 1e6);
  const auto workers = pool(8);
  std::printf("transient faults, %zu-task DAG, 8 workers, retry budget 3:\n",
              graph.size());
  Table retry_table({"fault p", "pin goodput", "reroute goodput",
                     "pin makespan (ms)", "reroute makespan (ms)",
                     "reroute retries"});
  for (double p : {0.0, 0.1, 0.3, 0.5, 0.7}) {
    resilience::FaultPlan plan;
    // Half the pool is flaky: pinned retries burn the budget there while a
    // reroute lands on a clean worker.
    for (int w = 0; w < 4; ++w) plan.transient_errors(w, 0.0, 1e12, p);
    SimulationOptions options;
    options.scheduler = SchedulerKind::kWorkStealing;
    options.fault_plan = p > 0.0 ? &plan : nullptr;
    options.abort_on_retry_exhaustion = false;
    options.seed = 11;
    options.retry_strategy = RetryStrategy::kSameWorker;
    auto pinned = simulate_schedule(graph, workers, options);
    options.retry_strategy = RetryStrategy::kAnyHealthy;
    auto rerouted = simulate_schedule(graph, workers, options);
    if (!pinned.ok() || !rerouted.ok()) continue;
    retry_table.add_row(
        {fmt_double(p, 1), fmt_double(pinned->availability() * 100, 1) + "%",
         fmt_double(rerouted->availability() * 100, 1) + "%",
         fmt_double(pinned->makespan_us / 1e3, 1),
         fmt_double(rerouted->makespan_us / 1e3, 1),
         std::to_string(rerouted->retries)});
  }
  std::printf("%s\n", retry_table.render().c_str());

  // --- Series 2: crash recovery distribution ------------------------------
  SimulationOptions clean_options;
  clean_options.scheduler = SchedulerKind::kWorkStealing;
  auto clean = simulate_schedule(graph, workers, clean_options);
  const double clean_ms = clean.ok() ? clean->makespan_us / 1e3 : 0.0;
  const int seeds = smoke ? 5 : 30;
  std::printf(
      "crash chaos (random plans, %d seeds, fault-free makespan %.1f ms):\n",
      seeds, clean_ms);
  Table crash_table({"crash rate/s", "avail", "makespan x", "detect p50 (ms)",
                     "detect p95 (ms)", "recover p50 (ms)",
                     "recover p95 (ms)", "recomputed"});
  for (double rate : {2.0, 5.0, 10.0}) {
    std::vector<double> detect, recover, avail, makespans, recomputed;
    for (int seed = 0; seed < seeds; ++seed) {
      resilience::ChaosSpec spec;
      spec.horizon_us = clean.ok() ? clean->makespan_us * 1.5 : 1e6;
      spec.crash_rate_per_s = rate;
      spec.mean_downtime_us = 5e4;
      const resilience::FaultPlan plan = resilience::FaultPlan::random(
          spec, static_cast<std::uint64_t>(seed) + 1, 8);
      SimulationOptions options;
      options.scheduler = SchedulerKind::kWorkStealing;
      options.fault_plan = &plan;
      options.abort_on_retry_exhaustion = false;
      options.seed = static_cast<std::uint64_t>(seed) + 100;
      auto outcome = simulate_schedule(graph, workers, options);
      if (!outcome.ok()) continue;
      for (double d : outcome->detection_latency_us) detect.push_back(d / 1e3);
      for (double r : outcome->recovery_us) recover.push_back(r / 1e3);
      avail.push_back(outcome->availability());
      makespans.push_back(outcome->makespan_us);
      recomputed.push_back(static_cast<double>(outcome->recomputed_tasks));
    }
    crash_table.add_row(
        {fmt_double(rate, 0), fmt_double(mean(avail) * 100, 1) + "%",
         fmt_double(clean_ms > 0 ? mean(makespans) / 1e3 / clean_ms : 0, 2),
         fmt_double(pct(detect, 50), 1), fmt_double(pct(detect, 95), 1),
         fmt_double(pct(recover, 50), 1), fmt_double(pct(recover, 95), 1),
         fmt_double(mean(recomputed), 1)});
  }
  std::printf("%s\n", crash_table.render().c_str());

  // --- Series 3: speculation vs stragglers --------------------------------
  std::printf("stragglers (2 workers 8x slow for the whole run):\n");
  Table spec_table({"speculation", "makespan (ms)", "backups", "wins"});
  for (double factor : {0.0, 1.5}) {
    resilience::FaultPlan plan;
    plan.straggler(0, 0.0, 1e12, 8.0).straggler(1, 0.0, 1e12, 8.0);
    SimulationOptions options;
    options.scheduler = SchedulerKind::kWorkStealing;
    options.fault_plan = &plan;
    options.speculation_factor = factor;
    options.seed = 3;
    auto outcome = simulate_schedule(graph, workers, options);
    if (!outcome.ok()) continue;
    spec_table.add_row({factor == 0.0 ? "off" : fmt_double(factor, 1),
                        fmt_double(outcome->makespan_us / 1e3, 1),
                        std::to_string(outcome->speculative_launches),
                        std::to_string(outcome->speculative_wins)});
  }
  std::printf("%s\n", spec_table.render().c_str());

  // --- Series 4: serving degraded-mode curve ------------------------------
  const int requests = smoke ? 150 : 600;
  std::printf("serving under FPGA faults (%d requests per point, FPGA + CPU "
              "variants):\n",
              requests);
  Table serve_table({"fault p", "goodput off", "goodput on", "degraded on",
                     "trips"});
  double goodput_off_at_worst = 1.0;
  double goodput_on_at_worst = 0.0;
  double fault_free_goodput = 1.0;
  for (double p : {0.0, 0.3, 0.6, 0.9}) {
    double goodputs[2] = {0.0, 0.0};
    double degraded_fraction = 0.0;
    int trips = 0;
    for (int enable = 0; enable <= 1; ++enable) {
      runtime::KnowledgeBase kb;
      serve::ServerOptions options;
      options.worker_threads = 2;
      options.queue_capacity = 4096;
      options.enable_breaker = enable == 1;
      options.breaker.failure_threshold = 3;
      auto rng = std::make_shared<Rng>(17);
      auto mu = std::make_shared<std::mutex>();
      options.fault_injector = [p, rng, mu](const serve::Batch&,
                                            const compiler::Variant& v) {
        if (v.target != compiler::TargetKind::kFpga || p == 0.0) {
          return OkStatus();
        }
        std::lock_guard<std::mutex> lock(*mu);
        return rng->bernoulli(p) ? Unavailable("injected FPGA fault")
                                 : OkStatus();
      };
      serve::Server server(options, &kb);
      serve::Endpoint ep;
      ep.kernel = "sim";
      compiler::Variant cpu;
      cpu.id = "sim-cpu";
      cpu.kernel = "sim";
      cpu.target = compiler::TargetKind::kCpu;
      cpu.latency_us = 50.0;
      cpu.energy_uj = 100.0;
      compiler::Variant fpga = cpu;
      fpga.id = "sim-fpga";
      fpga.target = compiler::TargetKind::kFpga;
      fpga.latency_us = 10.0;
      fpga.energy_uj = 20.0;
      ep.variants = {cpu, fpga};
      ep.handler = [](const serve::Batch& batch, std::vector<double>* values) {
        values->assign(batch.size(), 1.0);
        return OkStatus();
      };
      if (!server.register_endpoint(std::move(ep)).ok()) return 1;
      if (!server.start().ok()) return 1;
      std::atomic<int> completed{0};
      std::atomic<int> degraded{0};
      int admitted = 0;
      for (int i = 0; i < requests; ++i) {
        serve::Request request;
        request.kernel = "sim";
        const Status st =
            server.submit(request, [&](const serve::Response& response) {
              if (response.status.ok()) {
                completed.fetch_add(1);
                if (response.degraded) degraded.fetch_add(1);
              }
            });
        if (st.ok()) ++admitted;
      }
      server.drain();
      server.stop();
      goodputs[enable] =
          static_cast<double>(completed.load()) / static_cast<double>(requests);
      if (enable == 1) {
        degraded_fraction = static_cast<double>(degraded.load()) /
                            static_cast<double>(requests);
        trips = server.breakers().total_trips();
      }
    }
    if (p == 0.0) fault_free_goodput = std::max(goodputs[1], 1e-9);
    if (p == 0.9) {
      goodput_off_at_worst = goodputs[0];
      goodput_on_at_worst = goodputs[1];
    }
    serve_table.add_row({fmt_double(p, 1),
                         fmt_double(goodputs[0] * 100, 1) + "%",
                         fmt_double(goodputs[1] * 100, 1) + "%",
                         fmt_double(degraded_fraction * 100, 1) + "%",
                         std::to_string(trips)});
  }
  std::printf("%s\n", serve_table.render().c_str());

  const double rel_off = goodput_off_at_worst / fault_free_goodput;
  const double rel_on = goodput_on_at_worst / fault_free_goodput;
  std::printf("acceptance @ fault p=0.9: breaker-off sustains %.1f%% of "
              "fault-free goodput, breaker-on sustains %.1f%% — %s\n",
              rel_off * 100, rel_on * 100,
              (rel_on > 0.5 && rel_off < 0.5) ? "breaker wins"
                                              : "CHECK FAILED");
  everest::bench::SmokeChecker checker;
  checker.check(rel_on > 0.5, "breaker-on sustains >50% of fault-free goodput");
  checker.check(rel_off < 0.5, "breaker-off drops below 50% at p=0.9");
  return checker.report("E18");
}
