// E3 — Fig. 3: the end-point / inner-edge / cloud hierarchy.
//
// A streaming analytics pipeline (pre-process → infer → aggregate) is
// placed at three points of the hierarchy; we sweep the sensor stream rate
// and print per-placement latency and energy, exposing the crossover the
// hierarchy exists for: low rates favor the edge (no WAN), high rates need
// the cloud's throughput.
#include <cstdio>

#include "common/table.hpp"
#include "compiler/variants.hpp"
#include "platform/executor.hpp"
#include "platform/node.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::platform;

namespace {

/// The per-window work of the pipeline.
struct Stage {
  const char* name;
  double flops;
  double bytes_in;
  double bytes_out;
};

constexpr Stage kStages[] = {
    {"preprocess", 2e7, 2e5, 1e5},
    {"infer", 4e8, 1e5, 2e3},
    {"aggregate", 1e6, 2e3, 5e2},
};

/// Latency of one window processed at `node`, with raw sensor data living
/// at the edge node (endpoint attachment).
double window_latency_us(const PlatformSpec& spec, const NodeSpec& node,
                         const NodeSpec& data_home) {
  double total = 0.0;
  const LinkModel uplink = spec.link_between(data_home, node);
  // Raw window ships once to the compute node.
  total += uplink.transfer_us(kStages[0].bytes_in);
  const double gflops = node.cpu.peak_gflops_per_core * node.cpu.cores * 0.6;
  for (const Stage& stage : kStages) {
    total += stage.flops / (gflops * 1e3);
  }
  // Result returns to the endpoint.
  total += uplink.transfer_us(kStages[2].bytes_out);
  return total;
}

double window_energy_uj(const NodeSpec& node, double latency_us) {
  return node.cpu.active_power_w * latency_us * 0.5;  // ~50% busy
}

}  // namespace

int main(int argc, char** argv) {
  // Accepted for uniformity; this experiment's fixed series are
  // already CI-scale, so smoke mode changes nothing.
  (void)everest::bench::smoke_mode(argc, argv);

  std::printf("=== E3: hierarchy placement (paper Fig. 3) ===\n\n");
  PlatformSpec spec = PlatformSpec::everest_reference(1, 0, 1);
  // Add an endpoint-class node (weak CPU, co-located with the sensor).
  NodeSpec endpoint;
  endpoint.name = "endpoint-0";
  endpoint.tier = Tier::kEndpoint;
  endpoint.cpu = compiler::CpuModel::edge_arm();
  endpoint.cpu.name = "Endpoint-MCU";
  endpoint.cpu.cores = 2;
  endpoint.cpu.peak_gflops_per_core = 1.0;
  endpoint.cpu.active_power_w = 2.5;
  endpoint.cpu.idle_power_w = 0.5;
  spec.nodes.push_back(endpoint);

  const NodeSpec& cloud = *spec.find("p9-0");
  const NodeSpec& edge = *spec.find("edge-0");
  const NodeSpec& ep = *spec.find("endpoint-0");

  // Per-window latency at each placement (data born at the endpoint).
  const double lat_ep = window_latency_us(spec, ep, ep);
  const double lat_edge = window_latency_us(spec, edge, ep);
  const double lat_cloud = window_latency_us(spec, cloud, ep);

  Table lat({"placement", "tier", "window latency (ms)", "window energy (mJ)"});
  lat.add_row({"endpoint", "endpoint", fmt_double(lat_ep / 1e3, 2),
               fmt_double(window_energy_uj(ep, lat_ep) / 1e3, 2)});
  lat.add_row({"inner-edge", "inner-edge", fmt_double(lat_edge / 1e3, 2),
               fmt_double(window_energy_uj(edge, lat_edge) / 1e3, 2)});
  lat.add_row({"cloud", "cloud", fmt_double(lat_cloud / 1e3, 2),
               fmt_double(window_energy_uj(cloud, lat_cloud) / 1e3, 2)});
  std::printf("%s\n", lat.render().c_str());

  // Sweep the stream rate: sustainable throughput per placement is bounded
  // by 1/latency (single in-flight window per node — streaming constraint).
  std::printf("stream-rate sweep (windows/s sustained and met deadline):\n");
  Table sweep({"rate (win/s)", "endpoint", "inner-edge", "cloud",
               "best placement"});
  for (double rate : {1.0, 5.0, 20.0, 50.0, 200.0, 1000.0}) {
    const double budget_us = 1e6 / rate;
    auto verdict = [&](double latency) {
      return latency <= budget_us ? "ok" : "OVERLOAD";
    };
    const char* best = "endpoint";
    if (lat_ep > budget_us) best = lat_edge <= budget_us ? "inner-edge"
                                                          : "cloud";
    if (lat_edge > budget_us && lat_cloud > budget_us) best = "none";
    sweep.add_row({fmt_double(rate, 0), verdict(lat_ep), verdict(lat_edge),
                   verdict(lat_cloud), best});
  }
  std::printf("%s\n", sweep.render().c_str());
  std::printf("shape check: endpoint wins at low rates (no WAN hop, lowest "
              "energy); higher rates push processing inward — the reason "
              "the paper layers the ecosystem.\n");
  std::printf("\nE3 done.\n");
  return 0;
}
