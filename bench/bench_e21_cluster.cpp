// E21 — the sharded serving federation quantified. Four experiment
// series plus a routing micro-budget:
//   (1) horizontal scaling: keyless closed-loop throughput and p99 vs
//       node count — power-of-two-choices over live queue depths should
//       keep efficiency near-linear (smoke: >=70% at 8 nodes vs 1);
//   (2) locality routing vs the balance-only ablation at replication 2:
//       fraction of keyed requests served data-local, and what that does
//       to the per-node input caches (smoke: >=80% data-local, locality
//       hit rate beats the ablation);
//   (3) kill-one-node failover timeline: keyed traffic while a node
//       fail-stops and later rejoins — availability holds through the
//       outage via connection-refused re-routing, detection rebuilds the
//       shard map within the phi-detector interval, and p99 recovers
//       (smoke: zero failed responses, detection within 2x the nominal
//       interval, post-detection p99 <= 2x steady);
//   (4) hot-shard skew sweep: Zipf key popularity vs per-node load share
//       — locality routing deliberately trades balance for warm caches,
//       and this series prices that trade;
//   (5) the route() budget: a keyless decision is two snapshot loads +
//       one stateless hash, and must stay under 200 ns (smoke-enforced;
//       bench_micro carries the tracked measurement).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/federation.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "serve/loadgen.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::cluster;

namespace {

constexpr std::uint64_t kSeed = 2026;
/// Fixed per-request service time: makes per-node capacity predictable
/// (worker_threads / kServiceUs), so scaling efficiency is a property of
/// the federation, not of kernel noise.
constexpr long kServiceUs = 800;

serve::Endpoint kv_endpoint() {
  serve::Endpoint ep;
  ep.kernel = "kv";
  compiler::Variant v;
  v.id = "kv-cpu";
  v.kernel = "kv";
  v.target = compiler::TargetKind::kCpu;
  v.latency_us = static_cast<double>(kServiceUs);
  v.energy_uj = 10.0;
  ep.variants = {v};
  ep.handler = [](const serve::Batch& batch, std::vector<double>* values) {
    std::this_thread::sleep_for(std::chrono::microseconds(kServiceUs));
    values->clear();
    for (const serve::PendingRequest& pending : batch.requests) {
      values->push_back(static_cast<double>(pending.request.seed % 1000));
    }
    return OkStatus();
  };
  return ep;
}

FederationOptions base_options(std::size_t nodes) {
  FederationOptions options;
  options.num_nodes = nodes;
  options.node.queue_capacity = 256;
  options.node.worker_threads = 2;
  options.node.batch.max_batch = 1;  // capacity = workers / service time
  options.node.batch.max_wait = std::chrono::microseconds(500);
  options.shard_map.num_shards = 64;
  options.shard_map.replication = 2;
  options.seed = kSeed;
  return options;
}

struct Cluster {
  Federation federation;
  explicit Cluster(FederationOptions options)
      : federation(std::move(options)) {
    Status st = federation.register_endpoint(kv_endpoint());
    if (!st.ok()) std::printf("register failed: %s\n", st.to_string().c_str());
    st = federation.start();
    if (!st.ok()) std::printf("start failed: %s\n", st.to_string().c_str());
  }
};

std::string pct(double x) { return fmt_double(100.0 * x, 1) + "%"; }

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);
  everest::bench::SmokeChecker checker;

  std::printf(
      "=== E21: sharded multi-node serving federation (locality routing, "
      "live failover) ===\n\n");
  const auto horizon = std::chrono::milliseconds(smoke ? 300 : 600);

  // --- Series 1: throughput & p99 vs node count (keyless, closed loop) --
  std::printf(
      "--- scaling: keyless closed loop, 4 clients/node, 2 workers/node, "
      "%ld us service ---\n", kServiceUs);
  const std::vector<std::size_t> node_counts =
      smoke ? std::vector<std::size_t>{1, 8}
            : std::vector<std::size_t>{1, 2, 4, 8, 16};
  Table s1({"nodes", "achieved rps", "p50 ms", "p99 ms", "efficiency",
            "forwarded", "p2c routed"});
  double base_rps = 0.0;
  double efficiency_at_8 = 0.0;
  for (std::size_t nodes : node_counts) {
    Cluster cluster(base_options(nodes));
    serve::WorkloadSpec spec;
    spec.kernels = {"kv"};
    spec.duration = horizon;
    spec.lc_fraction = 0.0;
    spec.lc_deadline_ms = 0.0;
    spec.tp_deadline_ms = 0.0;
    spec.seed = kSeed;
    const serve::LoadReport report = serve::run_closed_loop(
        cluster.federation.submit_fn(), cluster.federation.drain_fn(), spec,
        /*clients=*/static_cast<int>(4 * nodes));
    const FederationStats stats = cluster.federation.stats();
    cluster.federation.stop();
    const double rps = report.achieved_rps();
    if (nodes == 1) base_rps = rps;
    const double efficiency =
        base_rps > 0.0 ? rps / (static_cast<double>(nodes) * base_rps) : 0.0;
    if (nodes == 8) efficiency_at_8 = efficiency;
    s1.add_row({std::to_string(nodes), fmt_double(rps, 0),
                fmt_double(report.p50_us() / 1e3, 2),
                fmt_double(report.p99_us() / 1e3, 2), pct(efficiency),
                std::to_string(stats.forwarded),
                std::to_string(stats.routed_p2c)});
  }
  std::printf("%s\n", s1.render().c_str());
  std::printf(
      "closed-loop clients saturate each node; power-of-two-choices on\n"
      "live queue depth spreads keyless load without a central balancer.\n\n");
  if (smoke) {
    checker.check(efficiency_at_8 >= 0.70,
                  "scaling-efficiency-at-8-nodes>=70%");
  }

  // --- Series 2: locality routing vs balance-only ablation --------------
  std::printf(
      "--- keyed locality at replication 2 (3 nodes, 48 objects x 64 KiB, "
      "1.25 MiB/node cache) ---\n");
  Table s2({"routing", "data-local", "cache hit rate", "forwarded",
            "hop mean us", "p99 ms", "completed"});
  double local_fraction_on = 0.0;
  double hit_on = 0.0;
  double hit_off = 0.0;
  for (const bool locality : {true, false}) {
    FederationOptions options = base_options(3);
    options.locality_routing = locality;
    options.node.input_cache.capacity_bytes = 1.25 * 1024 * 1024;
    options.node.input_stage_scale = 0.2;
    Cluster cluster(options);
    serve::WorkloadSpec spec;
    spec.kernels = {"kv"};
    spec.offered_rps = 800.0;
    spec.duration = horizon;
    spec.lc_fraction = 0.0;
    spec.lc_deadline_ms = 0.0;
    spec.tp_deadline_ms = 0.0;
    spec.num_data_objects = 48;
    spec.zipf_skew = 1.0;
    spec.input_bytes = 64.0 * 1024;
    spec.seed = kSeed;
    const serve::LoadReport report = serve::run_open_loop(
        cluster.federation.submit_fn(), cluster.federation.drain_fn(), spec);
    const FederationStats stats = cluster.federation.stats();
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    for (std::size_t i = 0; i < cluster.federation.num_nodes(); ++i) {
      const data::CacheStats cache = cluster.federation.node(i).input_cache_stats();
      hits += cache.hits;
      misses += cache.misses;
    }
    cluster.federation.stop();
    const double hit_rate =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 0.0;
    if (locality) {
      local_fraction_on = stats.data_local_fraction();
      hit_on = hit_rate;
    } else {
      hit_off = hit_rate;
    }
    s2.add_row({locality ? "locality" : "balance-only (ablation)",
                pct(stats.data_local_fraction()), pct(hit_rate),
                std::to_string(stats.forwarded),
                fmt_double(stats.hop_mean_us, 1),
                fmt_double(report.p99_us() / 1e3, 2),
                std::to_string(report.completed)});
  }
  std::printf("%s\n", s2.render().c_str());
  std::printf(
      "routing a key to its shard's replica holder is what keeps each\n"
      "node's input cache working set at ~1/N of the key space; the\n"
      "ablation spreads every key over every node and thrashes.\n\n");
  if (smoke) {
    checker.check(local_fraction_on >= 0.80, "keyed-data-local>=80%@repl2");
    checker.check(hit_on > hit_off, "locality-beats-ablation-hit-rate");
  }

  // --- Series 3: kill-one-node failover timeline ------------------------
  std::printf(
      "--- failover timeline: 3 nodes, repl 2, keyed 600 rps; node0 "
      "fail-stops, later rejoins ---\n");
  {
    FederationOptions options = base_options(3);
    options.membership.heartbeat_interval_us = 4'000.0;
    options.membership.suspect_phi = 2.0;
    options.membership.dead_phi = 4.0;
    options.pump_period_us = 2'000.0;
    Cluster cluster(options);
    Federation& fed = cluster.federation;

    struct Point {
      double at_ms;
      double latency_us;
      bool ok;
    };
    std::mutex mu;
    std::vector<Point> points;
    serve::SubmitFn timed = [&](serve::Request request,
                                serve::ResponseCallback on_done) {
      return fed.submit(
          std::move(request),
          [&, cb = std::move(on_done)](const serve::Response& response) {
            {
              std::lock_guard<std::mutex> lock(mu);
              points.push_back(Point{fed.now_us() / 1e3,
                                     response.latency_us,
                                     response.status.ok()});
            }
            cb(response);
          });
    };

    serve::WorkloadSpec spec;
    spec.kernels = {"kv"};
    spec.offered_rps = 600.0;
    spec.duration = std::chrono::milliseconds(smoke ? 1000 : 1800);
    spec.lc_fraction = 0.0;
    spec.lc_deadline_ms = 0.0;
    spec.tp_deadline_ms = 0.0;
    spec.num_data_objects = 48;
    spec.zipf_skew = 0.8;
    spec.seed = kSeed;

    const double crash_ms = smoke ? 350.0 : 600.0;
    const double restart_ms = smoke ? 700.0 : 1200.0;
    double crash_at_ms = 0.0;
    std::thread traffic([&] {
      (void)serve::run_open_loop(timed, fed.drain_fn(), spec);
    });
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(crash_ms)));
    crash_at_ms = fed.now_us() / 1e3;
    fed.crash(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<long>(restart_ms - crash_ms)));
    fed.restart(0);
    traffic.join();

    const FederationStats stats = fed.stats();
    const double detect_ms = stats.last_detection_us / 1e3;
    const double detection_latency_ms = detect_ms - crash_at_ms;
    fed.stop();

    std::uint64_t failed = 0;
    std::vector<double> steady;
    std::vector<double> recovered;
    for (const Point& point : points) {
      if (!point.ok) ++failed;
      if (point.at_ms >= 100.0 && point.at_ms < crash_at_ms) {
        steady.push_back(point.latency_us);
      }
      if (point.at_ms >= detect_ms + 20.0 && point.at_ms < detect_ms + 220.0) {
        recovered.push_back(point.latency_us);
      }
    }
    const double steady_p99 = steady.empty() ? 0.0 : percentile(steady, 99.0);
    const double recovered_p99 =
        recovered.empty() ? 0.0 : percentile(recovered, 99.0);

    // The timeline, in 50 ms windows around the crash.
    Table s3({"window ms", "completions", "p99 ms"});
    const double t0 = std::max(0.0, crash_at_ms - 150.0);
    for (double w = t0; w < restart_ms + 150.0; w += 50.0) {
      std::vector<double> window;
      for (const Point& point : points) {
        if (point.at_ms >= w && point.at_ms < w + 50.0) {
          window.push_back(point.latency_us);
        }
      }
      std::string tag = fmt_double(w, 0) + "-" + fmt_double(w + 50.0, 0);
      if (w <= crash_at_ms && crash_at_ms < w + 50.0) tag += " [crash]";
      if (w <= detect_ms && detect_ms < w + 50.0) tag += " [detected]";
      if (w <= restart_ms && restart_ms < w + 50.0) tag += " [restart]";
      s3.add_row({tag, std::to_string(window.size()),
                  window.empty()
                      ? "-"
                      : fmt_double(percentile(window, 99.0) / 1e3, 2)});
    }
    std::printf("%s\n", s3.render().c_str());
    std::printf(
        "crash at %.0f ms, declared dead at %.0f ms (detection %.0f ms; "
        "nominal interval %.0f ms),\nfailed responses %llu, refused-retry "
        "re-routes %llu, failovers %llu, rejoins %llu, rebuilds %llu,\n"
        "steady p99 %.2f ms vs post-detection p99 %.2f ms\n\n",
        crash_at_ms, detect_ms, detection_latency_ms,
        fed.detection_interval_us() / 1e3,
        static_cast<unsigned long long>(failed),
        static_cast<unsigned long long>(stats.refused_retries),
        static_cast<unsigned long long>(stats.failovers),
        static_cast<unsigned long long>(stats.rejoins),
        static_cast<unsigned long long>(stats.rebuilds), steady_p99 / 1e3,
        recovered_p99 / 1e3);
    if (smoke) {
      checker.check(failed == 0, "failover-zero-failed-responses");
      checker.check(stats.failovers >= 1 && stats.rejoins >= 1,
                    "failover-and-rejoin-detected");
      // 2x the nominal bound: the pump heartbeats on a pump-period grid,
      // so the EWMA inter-arrival mean can sit up to one pump period
      // above the configured heartbeat interval.
      checker.check(detection_latency_ms > 0.0 &&
                        detection_latency_ms <=
                            2.0 * fed.detection_interval_us() / 1e3,
                    "failover-detected-within-2x-interval");
      checker.check(!recovered.empty() && steady_p99 > 0.0 &&
                        recovered_p99 <= 2.0 * steady_p99,
                    "post-crash-p99<=2x-steady");
    }
  }

  // --- Series 4: hot-shard skew sweep -----------------------------------
  std::printf(
      "--- hot-shard skew: 4 nodes, keyed 1200 rps, Zipf skew sweep ---\n");
  const std::vector<double> skews =
      smoke ? std::vector<double>{0.0, 1.5}
            : std::vector<double>{0.0, 0.5, 1.0, 1.5};
  Table s4({"zipf skew", "max node share", "p99 ms", "data-local",
            "completed"});
  double max_share_uniform = 0.0;
  double max_share_skewed = 0.0;
  for (double skew : skews) {
    Cluster cluster(base_options(4));
    serve::WorkloadSpec spec;
    spec.kernels = {"kv"};
    spec.offered_rps = 1200.0;
    spec.duration = horizon;
    spec.lc_fraction = 0.0;
    spec.lc_deadline_ms = 0.0;
    spec.tp_deadline_ms = 0.0;
    spec.num_data_objects = 48;
    spec.zipf_skew = skew;
    spec.seed = kSeed;
    const serve::LoadReport report = serve::run_open_loop(
        cluster.federation.submit_fn(), cluster.federation.drain_fn(), spec);
    const FederationStats stats = cluster.federation.stats();
    std::uint64_t total = 0;
    std::uint64_t max_node = 0;
    for (std::size_t i = 0; i < cluster.federation.num_nodes(); ++i) {
      const std::uint64_t completed =
          cluster.federation.node(i).metrics().snapshot().completed;
      total += completed;
      max_node = std::max(max_node, completed);
    }
    cluster.federation.stop();
    const double share =
        total > 0 ? static_cast<double>(max_node) / static_cast<double>(total)
                  : 0.0;
    if (skew == 0.0) max_share_uniform = share;
    if (skew == 1.5) max_share_skewed = share;
    s4.add_row({fmt_double(skew, 1), pct(share),
                fmt_double(report.p99_us() / 1e3, 2),
                pct(stats.data_local_fraction()),
                std::to_string(report.completed)});
  }
  std::printf("%s\n", s4.render().c_str());
  std::printf(
      "locality routing follows the keys: as popularity skews, the hot\n"
      "shard's primary absorbs a growing share — the price of warm caches\n"
      "(the balance-only ablation in series 2 is the other end of the "
      "trade).\n\n");
  if (smoke) {
    checker.check(max_share_skewed > max_share_uniform,
                  "hot-shard-skew-shifts-load");
  }

  // --- Series 5: the route() budget -------------------------------------
  std::printf("--- route() budget (8-node rig, in-process) ---\n");
  {
    std::vector<std::string> names;
    for (int i = 0; i < 8; ++i) names.push_back("n" + std::to_string(i));
    Membership membership(std::move(names));
    for (std::size_t i = 0; i < 8; ++i) membership.heartbeat(i, 0.0);
    (void)membership.update(0.0);
    ShardMap shard_map(8, ShardMapConfig{64, 2, 0x5eedULL});
    std::size_t depths[8] = {3, 1, 4, 1, 5, 9, 2, 6};
    ClusterRouter router(
        &membership, &shard_map,
        [&depths](std::size_t node) { return depths[node]; }, kSeed);

    const int iterations = smoke ? 200'000 : 1'000'000;
    std::uint64_t sink = 0;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
      auto decision = router.route("");
      if (decision.ok()) sink += decision->node;
    }
    const double keyless_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count() /
        static_cast<double>(iterations);
    const std::string key = "obj17";
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
      auto decision = router.route(key);
      if (decision.ok()) sink += decision->node;
    }
    const double keyed_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count() /
        static_cast<double>(iterations);
    std::printf("keyless route: %.0f ns   keyed route: %.0f ns   (sink %llu)\n\n",
                keyless_ns, keyed_ns,
                static_cast<unsigned long long>(sink));
    if (smoke) {
      checker.check(keyless_ns < 200.0, "keyless-route<200ns");
    }
  }

  if (smoke) return checker.report("E21");
  return 0;
}
