// Uniform `--smoke` handling for the bench_e* report binaries: one shared
// parser so every experiment accepts the same flag the same way. In smoke
// mode a bench shrinks its series to CI scale and — where the experiment
// defines an acceptance criterion — self-checks it via the exit code
// (ctest runs the *_smoke tests this way).
#pragma once

#include <cstring>

namespace everest::bench {

inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

}  // namespace everest::bench
