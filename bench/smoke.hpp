// Uniform `--smoke` handling for the bench_e* report binaries: one shared
// parser so every experiment accepts the same flag the same way. In smoke
// mode a bench shrinks its series to CI scale and — where the experiment
// defines an acceptance criterion — self-checks it via the exit code
// (ctest runs the *_smoke tests this way).
//
// Exit-code contract, distinguishable from scripts (tools/check.sh):
//   kExitOk              (0) — ran to completion, all criteria held
//   kExitCriterionFailed (1) — ran to completion, >=1 criterion failed
//   kExitBadUsage        (2) — unknown flag; nothing was run
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace everest::bench {

inline constexpr int kExitOk = 0;
inline constexpr int kExitCriterionFailed = 1;
inline constexpr int kExitBadUsage = 2;

/// Parses the bench command line. The only flag is `--smoke`; anything else
/// prints usage and exits with kExitBadUsage so a typo in a CI recipe fails
/// loudly instead of silently running the full-length series.
inline bool smoke_mode(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\nusage: %s [--smoke]\n",
                   argv[i], argv[0]);
      std::exit(kExitBadUsage);
    }
  }
  return smoke;
}

/// Accumulates named acceptance criteria. Each failed check prints
/// `SMOKE FAIL [<name>] ...` immediately; exit_code() collapses any number
/// of failures to kExitCriterionFailed so the code never collides with
/// kExitBadUsage.
class SmokeChecker {
 public:
  /// Records one criterion; when it fails, names it on stdout (the name is
  /// what a CI log grep finds first).
  bool check(bool ok, const char* criterion) {
    if (!ok) {
      ++failures_;
      std::printf("SMOKE FAIL [%s]\n", criterion);
    }
    return ok;
  }

  [[nodiscard]] int failures() const { return failures_; }

  [[nodiscard]] int exit_code() const {
    return failures_ == 0 ? kExitOk : kExitCriterionFailed;
  }

  /// Prints the one-line verdict and returns exit_code() — the tail call
  /// for every bench main: `return checker.report("E19");`.
  int report(const char* experiment) const {
    if (failures_ == 0) {
      std::printf("%s smoke: all self-checks passed.\n", experiment);
    } else {
      std::printf("%s smoke: %d self-check(s) FAILED.\n", experiment,
                  failures_);
    }
    return exit_code();
  }

 private:
  int failures_ = 0;
};

}  // namespace everest::bench
