// E11 — use case §VI-B: air-quality forecasting for an industrial site.
//
// Series 1: grid-resolution × ensemble-size sweep — exceedance-decision
//           quality (vs a high-fidelity reference) and compute cost.
// Series 2: forecast-mode latency with/without acceleration at the 10 km
//           scale the paper names.
#include <cstdio>

#include <set>

#include "apps/airquality.hpp"
#include "common/table.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::apps;

namespace {

struct DecisionQuality {
  double hit_rate = 0.0;    // curtailment hours agreed with reference
  double false_rate = 0.0;  // curtailed hours the reference did not flag
};

DecisionQuality compare_decisions(const std::vector<int>& test,
                                  const std::vector<int>& reference) {
  std::set<int> ref(reference.begin(), reference.end());
  std::set<int> got(test.begin(), test.end());
  int hits = 0;
  for (int h : ref) hits += got.count(h);
  int false_pos = 0;
  for (int h : got) false_pos += ref.count(h) == 0;
  DecisionQuality q;
  q.hit_rate = ref.empty() ? 1.0 : double(hits) / double(ref.size());
  q.false_rate = got.empty() ? 0.0 : double(false_pos) / double(got.size());
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);

  std::printf("=== E11: air-quality monitoring (use case B) ===\n\n");
  std::vector<StackSource> sources = {
      {5.0, 4.0, 60.0, 420.0},
      {5.4, 4.2, 35.0, 260.0},
  };
  std::vector<Receptor> receptors = {
      {"school", 5.0, 6.5},
      {"hospital", 6.5, 5.0},
      {"station-east", 5.0, 9.0},
  };
  WeatherOptions weather;
  weather.ny = 10;
  weather.nx = 10;
  weather.dx_km = 1.0;
  weather.mean_wind = 4.0;

  // High-fidelity reference decision (finest grid, largest ensemble).
  AirQualityOptions reference;
  reference.ensemble_members = 24;
  reference.grid_ny = 80;
  reference.grid_nx = 80;
  reference.grid_dx_km = 0.125;
  reference.limit_ugm3 = 60.0;
  WeatherGenerator ref_gen(weather, 404);
  const AirQualityForecast ref =
      forecast_air_quality(sources, receptors, ref_gen, reference);
  std::printf("reference: %zu curtailment hours flagged, %.1f GFLOP\n\n",
              ref.curtail_hours.size(), ref.compute_flops / 1e9);

  std::printf("fidelity sweep (same weather seed as reference):\n");
  Table sweep({"grid", "members", "curtailed h", "hit rate",
               "over-curtail", "GFLOP", "speedup vs ref"});
  struct Config {
    int grid;
    double dx;
    int members;
  };
  for (const Config c : {Config{10, 1.0, 2}, {20, 0.5, 4}, {40, 0.25, 8},
                         {80, 0.125, 12}, {80, 0.125, 24}}) {
    if (smoke && c.grid > 40) continue;
    AirQualityOptions options = reference;
    options.grid_ny = c.grid;
    options.grid_nx = c.grid;
    options.grid_dx_km = c.dx;
    options.ensemble_members = c.members;
    WeatherGenerator gen(weather, 404);  // same weather as reference
    const AirQualityForecast forecast =
        forecast_air_quality(sources, receptors, gen, options);
    const DecisionQuality q =
        compare_decisions(forecast.curtail_hours, ref.curtail_hours);
    sweep.add_row({fmt_double(c.dx, 3) + " km", std::to_string(c.members),
                   std::to_string(forecast.curtail_hours.size()),
                   fmt_double(100 * q.hit_rate, 0) + "%",
                   fmt_double(100 * q.false_rate, 0) + "%",
                   fmt_double(forecast.compute_flops / 1e9, 2),
                   fmt_double(ref.compute_flops / forecast.compute_flops, 1) +
                       "x"});
  }
  std::printf("%s\n", sweep.render().c_str());

  // --- Series 2: forecast-mode latency ------------------------------------
  std::printf("forecast-mode latency for the full-fidelity run:\n");
  const double gflop = ref.compute_flops / 1e9;
  Table latency({"pipeline", "sustained GFLOP/s", "latency (s)"});
  for (const auto& [label, gflops] :
       {std::pair<const char*, double>{"edge ARM CPU", 9.6},
        {"POWER9 CPU", 134.0},
        {"POWER9 + FPGA (E5 plume speedup)", 134.0 * 11.0}}) {
    latency.add_row({label, fmt_double(gflops, 1),
                     fmt_double(gflop / gflops, 3)});
  }
  std::printf("%s\n", latency.render().c_str());
  std::printf("shape check: the 1 km grid displaces receptors relative to "
              "the (narrow) plume and over-curtails ~2x the necessary hours "
              "— lost production the finer grids avoid; 0.5 km already "
              "matches the reference decision at ~100x less compute, and "
              "acceleration keeps the full-fidelity run interactive — the "
              "Plum'air operating point (SVI-B).\n\nE11 done.\n");
  return 0;
}
