// E12 — use case §VI-C: traffic modeling / intelligent transportation.
//
// Series 1: PTDR Monte Carlo convergence — travel-time distribution
//           stability vs sample count (the server-side routing kernel).
// Series 2: simulator data boost — FCD from the simulator recalibrates
//           speed profiles and improves PTDR realism.
// Series 3: routing-service placement — query latency on edge vs cloud.
#include <cstdio>

#include <cmath>

#include "apps/traffic.hpp"
#include "common/table.hpp"
#include "platform/links.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::apps;

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);

  std::printf("=== E12: traffic modeling (use case C) ===\n\n");
  RoadNetwork city = RoadNetwork::make_grid(16, 16, 99);
  std::printf("city: %zu intersections, %zu segments\n\n", city.num_nodes(),
              city.num_segments());
  const std::size_t from = 0;
  const std::size_t to = city.num_nodes() - 1;

  // --- Series 1: MC convergence -------------------------------------------
  const auto path = city.shortest_path(from, to, 8);
  Rng rng(5);
  const TravelTimeDistribution ref =
      ptdr_route_time(city, path, 8, smoke ? 20000 : 100000, rng);
  std::printf("PTDR convergence (reference mean %.0f s from 100k samples):\n",
              ref.mean_s);
  Table conv({"samples", "mean err", "p95 err", "per-query cost (MFLOP)"});
  for (std::size_t n : {10, 50, 100, 500, 1000, 5000, 20000}) {
    // Average error over independent repetitions.
    double mean_err = 0.0, p95_err = 0.0;
    const int reps = smoke ? 5 : 20;
    for (int r = 0; r < reps; ++r) {
      Rng rrng(1000 + static_cast<std::uint64_t>(r) * 77 + n);
      const auto d = ptdr_route_time(city, path, 8, n, rrng);
      mean_err += std::abs(d.mean_s - ref.mean_s);
      p95_err += std::abs(d.p95_s - ref.p95_s);
    }
    // ~30 FLOPs per segment sample.
    const double mflop = 30.0 * double(path.size()) * double(n) / 1e6;
    conv.add_row({std::to_string(n),
                  fmt_double(mean_err / reps / ref.mean_s * 100, 2) + "%",
                  fmt_double(p95_err / reps / ref.p95_s * 100, 2) + "%",
                  fmt_double(mflop, 2)});
  }
  std::printf("%s\n", conv.render().c_str());

  // --- Series 2: simulator boost -------------------------------------------
  std::printf("simulator data boost: profiles recalibrated from synthetic "
              "FCD:\n");
  Table boost({"training days", "FCD points", "cells updated",
               "PTDR p95 (s)", "gap to truth"});
  RoadNetwork learner = RoadNetwork::make_grid(16, 16, 99);
  for (std::size_t s = 0; s < learner.num_segments(); ++s) {
    learner.mutable_profile(s).mean_factor.fill(1.0);  // naive prior
    learner.mutable_profile(s).stddev.fill(0.05);
  }
  Rng prng(9);
  const auto naive = ptdr_route_time(learner, path, 8, 20000, prng);
  Rng trng0(77);
  const double truth_p95 =
      ptdr_route_time(city, path, 8, 20000, trng0).p95_s;
  std::vector<FcdPoint> accumulated;
  for (int day = 1; day <= 4; ++day) {
    const SimulationDay sim =
        simulate_traffic_day(city, 4000, 100 + static_cast<std::uint64_t>(day));
    accumulated.insert(accumulated.end(), sim.fcd.begin(), sim.fcd.end());
    const std::size_t updated = calibrate_profiles(learner, accumulated, 5);
    Rng qrng(31 + static_cast<std::uint64_t>(day));
    const auto tuned = ptdr_route_time(learner, path, 8, 20000, qrng);
    boost.add_row({std::to_string(day), std::to_string(accumulated.size()),
                   std::to_string(updated), fmt_double(tuned.p95_s, 0),
                   fmt_double(100.0 * (tuned.p95_s - truth_p95) / truth_p95,
                              1) +
                       "%"});
  }
  std::printf("%s(ground-truth-profile p95: %.0f s; naive prior p95: %.0f s "
              "= %.1f%% gap)\n\n",
              boost.render().c_str(), truth_p95, naive.p95_s,
              100.0 * (naive.p95_s - truth_p95) / truth_p95);

  // --- Series 3: routing-service placement --------------------------------
  std::printf("routing query placement (4 alternatives x 1000 MC samples):\n");
  const double query_mflop =
      4.0 * 30.0 * double(path.size()) * 1000.0 / 1e6;
  const double request_bytes = 2e3, response_bytes = 8e3;
  Table place({"placement", "compute (ms)", "network (ms)", "total (ms)"});
  const platform::LinkModel wan = platform::LinkModel::edge_wan();
  for (const auto& [label, gflops, remote] :
       {std::tuple<const char*, double, bool>{"edge node (ARM)", 9.6, false},
        {"cloud (POWER9)", 134.0, true},
        {"cloud + FPGA MC engine", 134.0 * 6.0, true}}) {
    const double compute_ms = query_mflop / gflops;  // MFLOP / GFLOPs = ms
    const double network_ms =
        remote ? (wan.transfer_us(request_bytes) +
                  wan.transfer_us(response_bytes)) /
                     1e3
               : 0.05;
    place.add_row({label, fmt_double(compute_ms, 2),
                   fmt_double(network_ms, 2),
                   fmt_double(compute_ms + network_ms, 2)});
  }
  std::printf("%s\n", place.render().c_str());
  std::printf("shape check: MC error falls ~1/sqrt(n) (0.5%% by ~5k "
              "samples); simulator-boosted calibration moves the naive "
              "profiles to the rush-hour reality; WAN latency makes edge "
              "placement competitive despite weaker silicon (§VI-C).\n\nE12 "
              "done.\n");
  return 0;
}
