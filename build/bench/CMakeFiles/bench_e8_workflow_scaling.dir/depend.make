# Empty dependencies file for bench_e8_workflow_scaling.
# This may be replaced when dependencies are built.
