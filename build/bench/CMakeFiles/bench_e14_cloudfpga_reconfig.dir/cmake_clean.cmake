file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_cloudfpga_reconfig.dir/bench_e14_cloudfpga_reconfig.cpp.o"
  "CMakeFiles/bench_e14_cloudfpga_reconfig.dir/bench_e14_cloudfpga_reconfig.cpp.o.d"
  "bench_e14_cloudfpga_reconfig"
  "bench_e14_cloudfpga_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_cloudfpga_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
