# Empty dependencies file for bench_e14_cloudfpga_reconfig.
# This may be replaced when dependencies are built.
