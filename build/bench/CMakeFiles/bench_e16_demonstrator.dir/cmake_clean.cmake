file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_demonstrator.dir/bench_e16_demonstrator.cpp.o"
  "CMakeFiles/bench_e16_demonstrator.dir/bench_e16_demonstrator.cpp.o.d"
  "bench_e16_demonstrator"
  "bench_e16_demonstrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_demonstrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
