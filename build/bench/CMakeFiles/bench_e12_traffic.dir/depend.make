# Empty dependencies file for bench_e12_traffic.
# This may be replaced when dependencies are built.
