file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_airquality.dir/bench_e11_airquality.cpp.o"
  "CMakeFiles/bench_e11_airquality.dir/bench_e11_airquality.cpp.o.d"
  "bench_e11_airquality"
  "bench_e11_airquality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_airquality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
