file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_runtime_adaptation.dir/bench_e2_runtime_adaptation.cpp.o"
  "CMakeFiles/bench_e2_runtime_adaptation.dir/bench_e2_runtime_adaptation.cpp.o.d"
  "bench_e2_runtime_adaptation"
  "bench_e2_runtime_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_runtime_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
