# Empty dependencies file for bench_e2_runtime_adaptation.
# This may be replaced when dependencies are built.
