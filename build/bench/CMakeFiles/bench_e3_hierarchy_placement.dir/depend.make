# Empty dependencies file for bench_e3_hierarchy_placement.
# This may be replaced when dependencies are built.
