file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_acceleration.dir/bench_e5_acceleration.cpp.o"
  "CMakeFiles/bench_e5_acceleration.dir/bench_e5_acceleration.cpp.o.d"
  "bench_e5_acceleration"
  "bench_e5_acceleration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_acceleration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
