file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_memory_partitioning.dir/bench_e6_memory_partitioning.cpp.o"
  "CMakeFiles/bench_e6_memory_partitioning.dir/bench_e6_memory_partitioning.cpp.o.d"
  "bench_e6_memory_partitioning"
  "bench_e6_memory_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_memory_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
