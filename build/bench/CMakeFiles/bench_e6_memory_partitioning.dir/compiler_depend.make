# Empty compiler generated dependencies file for bench_e6_memory_partitioning.
# This may be replaced when dependencies are built.
