file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_compilation_flow.dir/bench_e1_compilation_flow.cpp.o"
  "CMakeFiles/bench_e1_compilation_flow.dir/bench_e1_compilation_flow.cpp.o.d"
  "bench_e1_compilation_flow"
  "bench_e1_compilation_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_compilation_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
