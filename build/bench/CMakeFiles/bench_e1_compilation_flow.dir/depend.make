# Empty dependencies file for bench_e1_compilation_flow.
# This may be replaced when dependencies are built.
