
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e1_compilation_flow.cpp" "bench/CMakeFiles/bench_e1_compilation_flow.dir/bench_e1_compilation_flow.cpp.o" "gcc" "bench/CMakeFiles/bench_e1_compilation_flow.dir/bench_e1_compilation_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/everest_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/everest_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/everest_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/everest_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/everest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
