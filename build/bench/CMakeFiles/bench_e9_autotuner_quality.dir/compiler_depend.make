# Empty compiler generated dependencies file for bench_e9_autotuner_quality.
# This may be replaced when dependencies are built.
