file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_energy_forecast.dir/bench_e10_energy_forecast.cpp.o"
  "CMakeFiles/bench_e10_energy_forecast.dir/bench_e10_energy_forecast.cpp.o.d"
  "bench_e10_energy_forecast"
  "bench_e10_energy_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_energy_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
