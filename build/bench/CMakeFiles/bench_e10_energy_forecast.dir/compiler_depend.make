# Empty compiler generated dependencies file for bench_e10_energy_forecast.
# This may be replaced when dependencies are built.
