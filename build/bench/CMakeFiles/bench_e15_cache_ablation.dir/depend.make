# Empty dependencies file for bench_e15_cache_ablation.
# This may be replaced when dependencies are built.
