# Empty compiler generated dependencies file for bench_e4_node_architectures.
# This may be replaced when dependencies are built.
