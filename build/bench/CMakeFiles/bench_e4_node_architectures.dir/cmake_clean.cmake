file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_node_architectures.dir/bench_e4_node_architectures.cpp.o"
  "CMakeFiles/bench_e4_node_architectures.dir/bench_e4_node_architectures.cpp.o.d"
  "bench_e4_node_architectures"
  "bench_e4_node_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_node_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
