file(REMOVE_RECURSE
  "CMakeFiles/traffic_routing.dir/traffic_routing.cpp.o"
  "CMakeFiles/traffic_routing.dir/traffic_routing.cpp.o.d"
  "traffic_routing"
  "traffic_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
