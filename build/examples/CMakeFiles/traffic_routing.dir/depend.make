# Empty dependencies file for traffic_routing.
# This may be replaced when dependencies are built.
