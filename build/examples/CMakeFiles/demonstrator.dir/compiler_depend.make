# Empty compiler generated dependencies file for demonstrator.
# This may be replaced when dependencies are built.
