file(REMOVE_RECURSE
  "CMakeFiles/demonstrator.dir/demonstrator.cpp.o"
  "CMakeFiles/demonstrator.dir/demonstrator.cpp.o.d"
  "demonstrator"
  "demonstrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demonstrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
