file(REMOVE_RECURSE
  "CMakeFiles/airquality_monitor.dir/airquality_monitor.cpp.o"
  "CMakeFiles/airquality_monitor.dir/airquality_monitor.cpp.o.d"
  "airquality_monitor"
  "airquality_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airquality_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
