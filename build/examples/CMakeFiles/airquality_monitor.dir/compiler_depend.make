# Empty compiler generated dependencies file for airquality_monitor.
# This may be replaced when dependencies are built.
