# Empty dependencies file for test_cache_store.
# This may be replaced when dependencies are built.
