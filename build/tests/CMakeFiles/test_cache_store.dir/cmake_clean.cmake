file(REMOVE_RECURSE
  "CMakeFiles/test_cache_store.dir/test_cache_store.cpp.o"
  "CMakeFiles/test_cache_store.dir/test_cache_store.cpp.o.d"
  "test_cache_store"
  "test_cache_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
