# Empty compiler generated dependencies file for test_demonstrator.
# This may be replaced when dependencies are built.
