file(REMOVE_RECURSE
  "CMakeFiles/test_demonstrator.dir/test_demonstrator.cpp.o"
  "CMakeFiles/test_demonstrator.dir/test_demonstrator.cpp.o.d"
  "test_demonstrator"
  "test_demonstrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_demonstrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
