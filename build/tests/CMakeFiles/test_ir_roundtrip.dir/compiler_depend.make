# Empty compiler generated dependencies file for test_ir_roundtrip.
# This may be replaced when dependencies are built.
