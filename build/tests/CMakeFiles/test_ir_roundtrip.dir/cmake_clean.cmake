file(REMOVE_RECURSE
  "CMakeFiles/test_ir_roundtrip.dir/test_ir_roundtrip.cpp.o"
  "CMakeFiles/test_ir_roundtrip.dir/test_ir_roundtrip.cpp.o.d"
  "test_ir_roundtrip"
  "test_ir_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
