# Empty compiler generated dependencies file for everest_apps.
# This may be replaced when dependencies are built.
