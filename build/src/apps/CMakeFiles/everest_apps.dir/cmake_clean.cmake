file(REMOVE_RECURSE
  "CMakeFiles/everest_apps.dir/airquality.cpp.o"
  "CMakeFiles/everest_apps.dir/airquality.cpp.o.d"
  "CMakeFiles/everest_apps.dir/energy.cpp.o"
  "CMakeFiles/everest_apps.dir/energy.cpp.o.d"
  "CMakeFiles/everest_apps.dir/mlp.cpp.o"
  "CMakeFiles/everest_apps.dir/mlp.cpp.o.d"
  "CMakeFiles/everest_apps.dir/traffic.cpp.o"
  "CMakeFiles/everest_apps.dir/traffic.cpp.o.d"
  "CMakeFiles/everest_apps.dir/weather.cpp.o"
  "CMakeFiles/everest_apps.dir/weather.cpp.o.d"
  "libeverest_apps.a"
  "libeverest_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
