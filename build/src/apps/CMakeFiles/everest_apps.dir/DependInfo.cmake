
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/airquality.cpp" "src/apps/CMakeFiles/everest_apps.dir/airquality.cpp.o" "gcc" "src/apps/CMakeFiles/everest_apps.dir/airquality.cpp.o.d"
  "/root/repo/src/apps/energy.cpp" "src/apps/CMakeFiles/everest_apps.dir/energy.cpp.o" "gcc" "src/apps/CMakeFiles/everest_apps.dir/energy.cpp.o.d"
  "/root/repo/src/apps/mlp.cpp" "src/apps/CMakeFiles/everest_apps.dir/mlp.cpp.o" "gcc" "src/apps/CMakeFiles/everest_apps.dir/mlp.cpp.o.d"
  "/root/repo/src/apps/traffic.cpp" "src/apps/CMakeFiles/everest_apps.dir/traffic.cpp.o" "gcc" "src/apps/CMakeFiles/everest_apps.dir/traffic.cpp.o.d"
  "/root/repo/src/apps/weather.cpp" "src/apps/CMakeFiles/everest_apps.dir/weather.cpp.o" "gcc" "src/apps/CMakeFiles/everest_apps.dir/weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsl/CMakeFiles/everest_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/everest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
