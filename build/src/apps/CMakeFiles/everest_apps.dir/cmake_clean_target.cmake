file(REMOVE_RECURSE
  "libeverest_apps.a"
)
