file(REMOVE_RECURSE
  "CMakeFiles/everest_ir.dir/attribute.cpp.o"
  "CMakeFiles/everest_ir.dir/attribute.cpp.o.d"
  "CMakeFiles/everest_ir.dir/dialect.cpp.o"
  "CMakeFiles/everest_ir.dir/dialect.cpp.o.d"
  "CMakeFiles/everest_ir.dir/module.cpp.o"
  "CMakeFiles/everest_ir.dir/module.cpp.o.d"
  "CMakeFiles/everest_ir.dir/operation.cpp.o"
  "CMakeFiles/everest_ir.dir/operation.cpp.o.d"
  "CMakeFiles/everest_ir.dir/parser.cpp.o"
  "CMakeFiles/everest_ir.dir/parser.cpp.o.d"
  "CMakeFiles/everest_ir.dir/pass.cpp.o"
  "CMakeFiles/everest_ir.dir/pass.cpp.o.d"
  "CMakeFiles/everest_ir.dir/pattern.cpp.o"
  "CMakeFiles/everest_ir.dir/pattern.cpp.o.d"
  "CMakeFiles/everest_ir.dir/printer.cpp.o"
  "CMakeFiles/everest_ir.dir/printer.cpp.o.d"
  "CMakeFiles/everest_ir.dir/type.cpp.o"
  "CMakeFiles/everest_ir.dir/type.cpp.o.d"
  "CMakeFiles/everest_ir.dir/verifier.cpp.o"
  "CMakeFiles/everest_ir.dir/verifier.cpp.o.d"
  "libeverest_ir.a"
  "libeverest_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
