file(REMOVE_RECURSE
  "libeverest_ir.a"
)
