# Empty compiler generated dependencies file for everest_ir.
# This may be replaced when dependencies are built.
