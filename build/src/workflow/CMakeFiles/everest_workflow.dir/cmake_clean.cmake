file(REMOVE_RECURSE
  "CMakeFiles/everest_workflow.dir/scheduler.cpp.o"
  "CMakeFiles/everest_workflow.dir/scheduler.cpp.o.d"
  "CMakeFiles/everest_workflow.dir/task_graph.cpp.o"
  "CMakeFiles/everest_workflow.dir/task_graph.cpp.o.d"
  "libeverest_workflow.a"
  "libeverest_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
