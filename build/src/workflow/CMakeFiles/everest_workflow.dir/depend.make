# Empty dependencies file for everest_workflow.
# This may be replaced when dependencies are built.
