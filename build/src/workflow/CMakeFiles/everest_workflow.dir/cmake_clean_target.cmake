file(REMOVE_RECURSE
  "libeverest_workflow.a"
)
