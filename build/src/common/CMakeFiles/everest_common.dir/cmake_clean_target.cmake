file(REMOVE_RECURSE
  "libeverest_common.a"
)
