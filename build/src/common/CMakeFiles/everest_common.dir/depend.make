# Empty dependencies file for everest_common.
# This may be replaced when dependencies are built.
