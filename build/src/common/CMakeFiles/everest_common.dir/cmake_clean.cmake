file(REMOVE_RECURSE
  "CMakeFiles/everest_common.dir/graph.cpp.o"
  "CMakeFiles/everest_common.dir/graph.cpp.o.d"
  "CMakeFiles/everest_common.dir/json.cpp.o"
  "CMakeFiles/everest_common.dir/json.cpp.o.d"
  "CMakeFiles/everest_common.dir/logging.cpp.o"
  "CMakeFiles/everest_common.dir/logging.cpp.o.d"
  "CMakeFiles/everest_common.dir/stats.cpp.o"
  "CMakeFiles/everest_common.dir/stats.cpp.o.d"
  "CMakeFiles/everest_common.dir/status.cpp.o"
  "CMakeFiles/everest_common.dir/status.cpp.o.d"
  "CMakeFiles/everest_common.dir/strings.cpp.o"
  "CMakeFiles/everest_common.dir/strings.cpp.o.d"
  "CMakeFiles/everest_common.dir/table.cpp.o"
  "CMakeFiles/everest_common.dir/table.cpp.o.d"
  "libeverest_common.a"
  "libeverest_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
