file(REMOVE_RECURSE
  "CMakeFiles/everest_hls.dir/binding.cpp.o"
  "CMakeFiles/everest_hls.dir/binding.cpp.o.d"
  "CMakeFiles/everest_hls.dir/cdfg.cpp.o"
  "CMakeFiles/everest_hls.dir/cdfg.cpp.o.d"
  "CMakeFiles/everest_hls.dir/crypto_cores.cpp.o"
  "CMakeFiles/everest_hls.dir/crypto_cores.cpp.o.d"
  "CMakeFiles/everest_hls.dir/hls.cpp.o"
  "CMakeFiles/everest_hls.dir/hls.cpp.o.d"
  "CMakeFiles/everest_hls.dir/memory.cpp.o"
  "CMakeFiles/everest_hls.dir/memory.cpp.o.d"
  "CMakeFiles/everest_hls.dir/resource_library.cpp.o"
  "CMakeFiles/everest_hls.dir/resource_library.cpp.o.d"
  "CMakeFiles/everest_hls.dir/scheduling.cpp.o"
  "CMakeFiles/everest_hls.dir/scheduling.cpp.o.d"
  "libeverest_hls.a"
  "libeverest_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
