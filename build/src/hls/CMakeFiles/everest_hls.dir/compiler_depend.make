# Empty compiler generated dependencies file for everest_hls.
# This may be replaced when dependencies are built.
