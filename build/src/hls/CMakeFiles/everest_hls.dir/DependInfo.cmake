
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hls/binding.cpp" "src/hls/CMakeFiles/everest_hls.dir/binding.cpp.o" "gcc" "src/hls/CMakeFiles/everest_hls.dir/binding.cpp.o.d"
  "/root/repo/src/hls/cdfg.cpp" "src/hls/CMakeFiles/everest_hls.dir/cdfg.cpp.o" "gcc" "src/hls/CMakeFiles/everest_hls.dir/cdfg.cpp.o.d"
  "/root/repo/src/hls/crypto_cores.cpp" "src/hls/CMakeFiles/everest_hls.dir/crypto_cores.cpp.o" "gcc" "src/hls/CMakeFiles/everest_hls.dir/crypto_cores.cpp.o.d"
  "/root/repo/src/hls/hls.cpp" "src/hls/CMakeFiles/everest_hls.dir/hls.cpp.o" "gcc" "src/hls/CMakeFiles/everest_hls.dir/hls.cpp.o.d"
  "/root/repo/src/hls/memory.cpp" "src/hls/CMakeFiles/everest_hls.dir/memory.cpp.o" "gcc" "src/hls/CMakeFiles/everest_hls.dir/memory.cpp.o.d"
  "/root/repo/src/hls/resource_library.cpp" "src/hls/CMakeFiles/everest_hls.dir/resource_library.cpp.o" "gcc" "src/hls/CMakeFiles/everest_hls.dir/resource_library.cpp.o.d"
  "/root/repo/src/hls/scheduling.cpp" "src/hls/CMakeFiles/everest_hls.dir/scheduling.cpp.o" "gcc" "src/hls/CMakeFiles/everest_hls.dir/scheduling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/everest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
