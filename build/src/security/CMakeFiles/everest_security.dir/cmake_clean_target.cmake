file(REMOVE_RECURSE
  "libeverest_security.a"
)
