# Empty compiler generated dependencies file for everest_security.
# This may be replaced when dependencies are built.
