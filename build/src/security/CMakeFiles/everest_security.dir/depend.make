# Empty dependencies file for everest_security.
# This may be replaced when dependencies are built.
