file(REMOVE_RECURSE
  "CMakeFiles/everest_security.dir/aes.cpp.o"
  "CMakeFiles/everest_security.dir/aes.cpp.o.d"
  "CMakeFiles/everest_security.dir/anomaly.cpp.o"
  "CMakeFiles/everest_security.dir/anomaly.cpp.o.d"
  "CMakeFiles/everest_security.dir/protected_store.cpp.o"
  "CMakeFiles/everest_security.dir/protected_store.cpp.o.d"
  "CMakeFiles/everest_security.dir/sha256.cpp.o"
  "CMakeFiles/everest_security.dir/sha256.cpp.o.d"
  "CMakeFiles/everest_security.dir/taint.cpp.o"
  "CMakeFiles/everest_security.dir/taint.cpp.o.d"
  "libeverest_security.a"
  "libeverest_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
