file(REMOVE_RECURSE
  "CMakeFiles/everest_dsl.dir/annotations.cpp.o"
  "CMakeFiles/everest_dsl.dir/annotations.cpp.o.d"
  "CMakeFiles/everest_dsl.dir/einsum.cpp.o"
  "CMakeFiles/everest_dsl.dir/einsum.cpp.o.d"
  "CMakeFiles/everest_dsl.dir/nn_exchange.cpp.o"
  "CMakeFiles/everest_dsl.dir/nn_exchange.cpp.o.d"
  "CMakeFiles/everest_dsl.dir/particles.cpp.o"
  "CMakeFiles/everest_dsl.dir/particles.cpp.o.d"
  "CMakeFiles/everest_dsl.dir/tensor_expr.cpp.o"
  "CMakeFiles/everest_dsl.dir/tensor_expr.cpp.o.d"
  "CMakeFiles/everest_dsl.dir/workflow_dsl.cpp.o"
  "CMakeFiles/everest_dsl.dir/workflow_dsl.cpp.o.d"
  "libeverest_dsl.a"
  "libeverest_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
