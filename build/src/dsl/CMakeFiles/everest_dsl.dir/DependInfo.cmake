
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/annotations.cpp" "src/dsl/CMakeFiles/everest_dsl.dir/annotations.cpp.o" "gcc" "src/dsl/CMakeFiles/everest_dsl.dir/annotations.cpp.o.d"
  "/root/repo/src/dsl/einsum.cpp" "src/dsl/CMakeFiles/everest_dsl.dir/einsum.cpp.o" "gcc" "src/dsl/CMakeFiles/everest_dsl.dir/einsum.cpp.o.d"
  "/root/repo/src/dsl/nn_exchange.cpp" "src/dsl/CMakeFiles/everest_dsl.dir/nn_exchange.cpp.o" "gcc" "src/dsl/CMakeFiles/everest_dsl.dir/nn_exchange.cpp.o.d"
  "/root/repo/src/dsl/particles.cpp" "src/dsl/CMakeFiles/everest_dsl.dir/particles.cpp.o" "gcc" "src/dsl/CMakeFiles/everest_dsl.dir/particles.cpp.o.d"
  "/root/repo/src/dsl/tensor_expr.cpp" "src/dsl/CMakeFiles/everest_dsl.dir/tensor_expr.cpp.o" "gcc" "src/dsl/CMakeFiles/everest_dsl.dir/tensor_expr.cpp.o.d"
  "/root/repo/src/dsl/workflow_dsl.cpp" "src/dsl/CMakeFiles/everest_dsl.dir/workflow_dsl.cpp.o" "gcc" "src/dsl/CMakeFiles/everest_dsl.dir/workflow_dsl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/everest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
