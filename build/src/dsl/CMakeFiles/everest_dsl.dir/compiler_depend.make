# Empty compiler generated dependencies file for everest_dsl.
# This may be replaced when dependencies are built.
