file(REMOVE_RECURSE
  "libeverest_dsl.a"
)
