file(REMOVE_RECURSE
  "CMakeFiles/everest_compiler.dir/analysis.cpp.o"
  "CMakeFiles/everest_compiler.dir/analysis.cpp.o.d"
  "CMakeFiles/everest_compiler.dir/backend.cpp.o"
  "CMakeFiles/everest_compiler.dir/backend.cpp.o.d"
  "CMakeFiles/everest_compiler.dir/cache_model.cpp.o"
  "CMakeFiles/everest_compiler.dir/cache_model.cpp.o.d"
  "CMakeFiles/everest_compiler.dir/dependence.cpp.o"
  "CMakeFiles/everest_compiler.dir/dependence.cpp.o.d"
  "CMakeFiles/everest_compiler.dir/dse.cpp.o"
  "CMakeFiles/everest_compiler.dir/dse.cpp.o.d"
  "CMakeFiles/everest_compiler.dir/interpreter.cpp.o"
  "CMakeFiles/everest_compiler.dir/interpreter.cpp.o.d"
  "CMakeFiles/everest_compiler.dir/lowering.cpp.o"
  "CMakeFiles/everest_compiler.dir/lowering.cpp.o.d"
  "CMakeFiles/everest_compiler.dir/transforms.cpp.o"
  "CMakeFiles/everest_compiler.dir/transforms.cpp.o.d"
  "CMakeFiles/everest_compiler.dir/variants.cpp.o"
  "CMakeFiles/everest_compiler.dir/variants.cpp.o.d"
  "libeverest_compiler.a"
  "libeverest_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
