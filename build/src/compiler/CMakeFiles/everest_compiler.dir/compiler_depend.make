# Empty compiler generated dependencies file for everest_compiler.
# This may be replaced when dependencies are built.
