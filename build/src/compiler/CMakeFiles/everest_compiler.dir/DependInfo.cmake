
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/analysis.cpp" "src/compiler/CMakeFiles/everest_compiler.dir/analysis.cpp.o" "gcc" "src/compiler/CMakeFiles/everest_compiler.dir/analysis.cpp.o.d"
  "/root/repo/src/compiler/backend.cpp" "src/compiler/CMakeFiles/everest_compiler.dir/backend.cpp.o" "gcc" "src/compiler/CMakeFiles/everest_compiler.dir/backend.cpp.o.d"
  "/root/repo/src/compiler/cache_model.cpp" "src/compiler/CMakeFiles/everest_compiler.dir/cache_model.cpp.o" "gcc" "src/compiler/CMakeFiles/everest_compiler.dir/cache_model.cpp.o.d"
  "/root/repo/src/compiler/dependence.cpp" "src/compiler/CMakeFiles/everest_compiler.dir/dependence.cpp.o" "gcc" "src/compiler/CMakeFiles/everest_compiler.dir/dependence.cpp.o.d"
  "/root/repo/src/compiler/dse.cpp" "src/compiler/CMakeFiles/everest_compiler.dir/dse.cpp.o" "gcc" "src/compiler/CMakeFiles/everest_compiler.dir/dse.cpp.o.d"
  "/root/repo/src/compiler/interpreter.cpp" "src/compiler/CMakeFiles/everest_compiler.dir/interpreter.cpp.o" "gcc" "src/compiler/CMakeFiles/everest_compiler.dir/interpreter.cpp.o.d"
  "/root/repo/src/compiler/lowering.cpp" "src/compiler/CMakeFiles/everest_compiler.dir/lowering.cpp.o" "gcc" "src/compiler/CMakeFiles/everest_compiler.dir/lowering.cpp.o.d"
  "/root/repo/src/compiler/transforms.cpp" "src/compiler/CMakeFiles/everest_compiler.dir/transforms.cpp.o" "gcc" "src/compiler/CMakeFiles/everest_compiler.dir/transforms.cpp.o.d"
  "/root/repo/src/compiler/variants.cpp" "src/compiler/CMakeFiles/everest_compiler.dir/variants.cpp.o" "gcc" "src/compiler/CMakeFiles/everest_compiler.dir/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/everest_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/everest_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/everest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
