file(REMOVE_RECURSE
  "libeverest_compiler.a"
)
