
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/adaptation.cpp" "src/runtime/CMakeFiles/everest_runtime.dir/adaptation.cpp.o" "gcc" "src/runtime/CMakeFiles/everest_runtime.dir/adaptation.cpp.o.d"
  "/root/repo/src/runtime/autotuner.cpp" "src/runtime/CMakeFiles/everest_runtime.dir/autotuner.cpp.o" "gcc" "src/runtime/CMakeFiles/everest_runtime.dir/autotuner.cpp.o.d"
  "/root/repo/src/runtime/demonstrator.cpp" "src/runtime/CMakeFiles/everest_runtime.dir/demonstrator.cpp.o" "gcc" "src/runtime/CMakeFiles/everest_runtime.dir/demonstrator.cpp.o.d"
  "/root/repo/src/runtime/knowledge.cpp" "src/runtime/CMakeFiles/everest_runtime.dir/knowledge.cpp.o" "gcc" "src/runtime/CMakeFiles/everest_runtime.dir/knowledge.cpp.o.d"
  "/root/repo/src/runtime/vm.cpp" "src/runtime/CMakeFiles/everest_runtime.dir/vm.cpp.o" "gcc" "src/runtime/CMakeFiles/everest_runtime.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/everest_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/everest_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/everest_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/everest_security.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/everest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/everest_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/everest_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
