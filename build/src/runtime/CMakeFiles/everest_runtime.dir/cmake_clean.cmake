file(REMOVE_RECURSE
  "CMakeFiles/everest_runtime.dir/adaptation.cpp.o"
  "CMakeFiles/everest_runtime.dir/adaptation.cpp.o.d"
  "CMakeFiles/everest_runtime.dir/autotuner.cpp.o"
  "CMakeFiles/everest_runtime.dir/autotuner.cpp.o.d"
  "CMakeFiles/everest_runtime.dir/demonstrator.cpp.o"
  "CMakeFiles/everest_runtime.dir/demonstrator.cpp.o.d"
  "CMakeFiles/everest_runtime.dir/knowledge.cpp.o"
  "CMakeFiles/everest_runtime.dir/knowledge.cpp.o.d"
  "CMakeFiles/everest_runtime.dir/vm.cpp.o"
  "CMakeFiles/everest_runtime.dir/vm.cpp.o.d"
  "libeverest_runtime.a"
  "libeverest_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
