# Empty compiler generated dependencies file for everest_runtime.
# This may be replaced when dependencies are built.
