file(REMOVE_RECURSE
  "CMakeFiles/everest_platform.dir/executor.cpp.o"
  "CMakeFiles/everest_platform.dir/executor.cpp.o.d"
  "CMakeFiles/everest_platform.dir/links.cpp.o"
  "CMakeFiles/everest_platform.dir/links.cpp.o.d"
  "CMakeFiles/everest_platform.dir/node.cpp.o"
  "CMakeFiles/everest_platform.dir/node.cpp.o.d"
  "libeverest_platform.a"
  "libeverest_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
