// trace_lint: standalone chrome-trace validator.
//
//   trace_lint <file.trace.json> [more files...]
//
// Lints each file the way Perfetto's importer would (structure, ph/ts/
// dur fields) via obs::validate_chrome_trace, then re-checks span
// structure on the embedded span args (acyclic parents, root
// reachability). Exit 0 when every file passes, 1 on the first lint
// failure, 2 on usage/IO errors. Wired into tools/check.sh so any
// exporter change that would break Perfetto loading fails the gate.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"

namespace {

int lint_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_lint: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const everest::Status lint = everest::obs::validate_chrome_trace(text);
  if (!lint.ok()) {
    std::fprintf(stderr, "trace_lint: %s: %s\n", path.c_str(),
                 lint.to_string().c_str());
    return 1;
  }

  // Rebuild the span forest from the args the exporter embeds and check
  // root reachability — a structural property the JSON shape alone
  // cannot guarantee.
  auto parsed = everest::json::parse(text);
  const auto& events = parsed.value().at("traceEvents").as_array();
  std::vector<everest::obs::TraceEvent> spans;
  for (const auto& ev : events) {
    if (!ev.at("ph").is_string() || ev.at("ph").as_string() != "X") continue;
    const auto& args = ev.at("args");
    everest::obs::TraceEvent span;
    span.kind = everest::obs::TraceEvent::Kind::kSpan;
    span.trace_id = static_cast<std::uint64_t>(args.at("trace_id").as_int());
    span.span_id = static_cast<std::uint64_t>(args.at("span_id").as_int());
    span.parent_id =
        static_cast<std::uint64_t>(args.at("parent_id").as_int());
    span.start_us = ev.at("ts").as_number();
    span.end_us = span.start_us + ev.at("dur").as_number();
    span.name = ev.at("name").as_string();
    spans.push_back(std::move(span));
  }
  if (!everest::obs::spans_acyclic(spans)) {
    std::fprintf(stderr, "trace_lint: %s: span parent links are not a forest\n",
                 path.c_str());
    return 1;
  }
  const double reachable = everest::obs::root_reachable_fraction(spans);
  if (reachable < 1.0) {
    std::fprintf(stderr,
                 "trace_lint: %s: only %.4f of spans reach a root\n",
                 path.c_str(), reachable);
    return 1;
  }
  std::printf("trace_lint: %s: ok (%zu events, %zu spans)\n", path.c_str(),
              events.size(), spans.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_lint <file.trace.json> [...]\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    const int rc = lint_file(argv[i]);
    if (rc != 0) return rc;
  }
  return 0;
}
