#!/usr/bin/env bash
# Full pre-merge gate:
#   1. tier-1 contract: configure + build + ctest (all tests and
#      registered bench smokes);
#   2. every bench_e* binary in --smoke mode, distinguishing a failed
#      self-check criterion (exit 1) from a usage error (exit 2);
#   3. trace_lint over the flight-recorder bundles the E25 smoke dumped:
#      the standalone validator proves the exported chrome traces load
#      in Perfetto (structure + span forest + root reachability);
#   4. a ThreadSanitizer build (EVEREST_SANITIZE=thread) of the
#      concurrency-heavy test binaries (serve, obs, data, cluster,
#      storage, stream, jit, runtime — the last two cover the JIT's
#      KnowledgeBase hot-swap against concurrent selection) run under
#      ctest;
#   5. an AddressSanitizer build (EVEREST_SANITIZE=address) of the
#      I/O-error-path-heavy test binaries (storage, data): fault
#      injection exercises every short-write/EIO/ENOSPC cleanup path,
#      and ASan proves none of them leaks or double-frees.
# Any failure aborts the script with a non-zero exit.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

echo "=== [1/5] tier-1: configure + build + ctest ==="
cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
cmake --build "$ROOT/build" -j "$JOBS"
(cd "$ROOT/build" && ctest --output-on-failure -j "$JOBS")

echo
echo "=== [2/5] bench smokes (exit 1 = criterion failed, 2 = bad usage) ==="
smoke_failures=0
for bench in "$ROOT"/build/bench/bench_e*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  set +e
  # Run from build/ so relative artifacts (E25's e25_flight/ dumps) land
  # in a predictable place for the later gates.
  (cd "$ROOT/build" && "$bench" --smoke >/dev/null 2>&1)
  code=$?
  set -e
  case "$code" in
    0) echo "  PASS $name" ;;
    1) echo "  FAIL $name (self-check criterion failed)"; smoke_failures=$((smoke_failures + 1)) ;;
    2) echo "  FAIL $name (rejected --smoke as bad usage)"; smoke_failures=$((smoke_failures + 1)) ;;
    *) echo "  FAIL $name (exit $code)"; smoke_failures=$((smoke_failures + 1)) ;;
  esac
done
if [ "$smoke_failures" -ne 0 ]; then
  echo "bench smoke: $smoke_failures failure(s)"
  exit 1
fi

echo
echo "=== [3/5] trace lint: flight-recorder bundles load in Perfetto ==="
if ls "$ROOT"/build/e25_flight/*.trace.json >/dev/null 2>&1; then
  "$ROOT"/build/tools/trace_lint "$ROOT"/build/e25_flight/*.trace.json
else
  echo "no flight bundles found (expected from the E25 smoke)" >&2
  exit 1
fi

echo
echo "=== [4/5] TSan: serve + obs + data + cluster + storage + stream + jit + runtime tests ==="
cmake -B "$ROOT/build-tsan" -S "$ROOT" -DEVEREST_SANITIZE=thread >/dev/null
cmake --build "$ROOT/build-tsan" -j "$JOBS" \
  --target test_serve test_obs test_data test_cluster test_storage test_stream \
  test_jit test_runtime
(cd "$ROOT/build-tsan" && ctest --output-on-failure -j "$JOBS" \
  -R 'test_serve|test_obs|test_data|test_cluster|test_storage|test_stream|test_jit|test_runtime')

echo
echo "=== [5/5] ASan: storage + data tests (fault-injection leak check) ==="
cmake -B "$ROOT/build-asan" -S "$ROOT" -DEVEREST_SANITIZE=address >/dev/null
cmake --build "$ROOT/build-asan" -j "$JOBS" --target test_storage test_data
(cd "$ROOT/build-asan" && ctest --output-on-failure -j "$JOBS" \
  -R 'test_storage|test_data')

echo
echo "check.sh: all gates passed."
